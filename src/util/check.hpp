// Assertion macros used throughout adaptnow.
//
// ANOW_CHECK is always on (protocol invariants must hold in release builds
// too: a DSM with a silently corrupted page table produces wrong numerical
// answers, which is strictly worse than a crash).  ANOW_DCHECK compiles out
// in NDEBUG builds and is reserved for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anow::util {

/// Thrown when an ANOW_CHECK fails.  Tests can assert on this type.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

}  // namespace anow::util

#define ANOW_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      ::anow::util::check_failed(#expr, __FILE__, __LINE__, "");            \
    }                                                                       \
  } while (false)

#define ANOW_CHECK_MSG(expr, ...)                                           \
  do {                                                                      \
    if (!(expr)) [[unlikely]] {                                             \
      std::ostringstream anow_check_os_;                                    \
      anow_check_os_ << __VA_ARGS__;                                        \
      ::anow::util::check_failed(#expr, __FILE__, __LINE__,                 \
                                 anow_check_os_.str());                     \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define ANOW_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define ANOW_DCHECK(expr) ANOW_CHECK(expr)
#endif
