// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the repository (NBF partner lists, Poisson
// adaptation schedules, property-test workloads) draw from this generator so
// that every run is reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace anow::util {

/// xoshiro256** seeded through splitmix64 — fast, high quality, and entirely
/// self-contained (no dependence on libstdc++'s unspecified distributions,
/// which would make golden values non-portable).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (for Poisson processes).
  double next_exponential(double mean);

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace anow::util
