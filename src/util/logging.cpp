#include "util/logging.hpp"

#include <algorithm>
#include <cctype>

#include "util/check.hpp"

namespace anow::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() { return g_level; }

void set_log_level(LogLevel level) { g_level = level; }

LogLevel parse_log_level(const std::string& s) {
  std::string lower(s);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  ANOW_CHECK_MSG(false, "unknown log level '" << s << "'");
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* tag) {
  os_ << "[" << log_level_name(level) << "][" << tag << "] ";
}

LogLine::~LogLine() {
  os_ << "\n";
  std::cerr << os_.str();
}

}  // namespace detail
}  // namespace anow::util
