// Minimal leveled logger.
//
// The simulator is deterministic and single-logical-threaded, so the logger
// needs no synchronization; it exists to give benches/examples a readable
// trace of protocol events (joins, leaves, GCs, migrations) without
// polluting stdout of table-producing benches (logs go to stderr).
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace anow::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Global log threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "trace|debug|info|warn|error|off" (case-insensitive).
LogLevel parse_log_level(const std::string& s);

const char* log_level_name(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace anow::util

// Usage: ANOW_LOG(kInfo, "adapt") << "join of host " << h;
#define ANOW_LOG(level, tag)                                         \
  if (::anow::util::LogLevel::level < ::anow::util::log_level()) {   \
  } else                                                             \
    ::anow::util::detail::LogLine(::anow::util::LogLevel::level, tag)
