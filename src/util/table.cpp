#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace anow::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ANOW_CHECK(!headers_.empty());
}

Table& Table::row() {
  Row r;
  r.separator_before = pending_separator_;
  pending_separator_ = false;
  rows_.push_back(std::move(r));
  return *this;
}

Table& Table::add(const std::string& cell) {
  ANOW_CHECK_MSG(!rows_.empty(), "call row() before add()");
  ANOW_CHECK_MSG(rows_.back().cells.size() < headers_.size(),
                 "row has more cells than headers");
  rows_.back().cells.push_back(cell);
  return *this;
}

Table& Table::add(std::int64_t value) { return add(format_thousands(value)); }

Table& Table::add(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return add(os.str());
}

Table& Table::separator() {
  pending_separator_ = true;
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      widths[c] = std::max(widths[c], r.cells[c].size());
    }
  }

  auto print_sep = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto is_numeric = [](const std::string& s) {
    if (s.empty()) return false;
    for (char ch : s) {
      if (!(std::isdigit(static_cast<unsigned char>(ch)) || ch == '.' ||
            ch == ',' || ch == '-' || ch == '+' || ch == '%' || ch == 'e')) {
        return false;
      }
    }
    return true;
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "| ";
      if (is_numeric(cell)) {
        os << std::setw(static_cast<int>(widths[c])) << std::right << cell;
      } else {
        os << std::setw(static_cast<int>(widths[c])) << std::left << cell;
      }
      os << ' ';
    }
    os << "|\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& r : rows_) {
    if (r.separator_before) print_sep();
    print_row(r.cells);
  }
  print_sep();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

JsonWriter::JsonWriter() = default;

void JsonWriter::comma() {
  ANOW_CHECK_MSG(!frames_.empty(), "field outside any object");
  if (frames_.back().has_members) out_ += ",";
  frames_.back().has_members = true;
}

void JsonWriter::open_key(const std::string& key) {
  ANOW_CHECK_MSG(!frames_.empty() && !frames_.back().array,
                 "keyed field inside an array");
  comma();
  out_ += "\"" + json_escape(key) + "\":";
}

void JsonWriter::open_container(const std::string& key, char open,
                                bool array) {
  if (frames_.empty()) {
    ANOW_CHECK_MSG(key.empty() && out_.empty(),
                   "root container must be unnamed and unique");
  } else if (frames_.back().array) {
    ANOW_CHECK_MSG(key.empty(), "array elements are anonymous");
    comma();
  } else {
    open_key(key);
  }
  out_ += open;
  frames_.push_back(Frame{array, false});
}

JsonWriter& JsonWriter::begin_object(const std::string& key) {
  open_container(key, '{', /*array=*/false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ANOW_CHECK_MSG(!frames_.empty() && !frames_.back().array,
                 "end_object without begin_object");
  frames_.pop_back();
  out_ += "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array(const std::string& key) {
  open_container(key, '[', /*array=*/true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ANOW_CHECK_MSG(!frames_.empty() && frames_.back().array,
                 "end_array without begin_array");
  frames_.pop_back();
  out_ += "]";
  return *this;
}

std::string JsonWriter::number(double value) const {
  std::ostringstream os;
  os << std::setprecision(12) << value;
  return os.str();
}

JsonWriter& JsonWriter::field(const std::string& key,
                              const std::string& value) {
  open_key(key);
  out_ += "\"" + json_escape(value) + "\"";
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, double value) {
  open_key(key);
  out_ += number(value);
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, std::int64_t value) {
  open_key(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  ANOW_CHECK_MSG(!frames_.empty() && frames_.back().array,
                 "scalar value outside any array");
  comma();
  out_ += "\"" + json_escape(v) + "\"";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  ANOW_CHECK_MSG(!frames_.empty() && frames_.back().array,
                 "scalar value outside any array");
  comma();
  out_ += number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  ANOW_CHECK_MSG(!frames_.empty() && frames_.back().array,
                 "scalar value outside any array");
  comma();
  out_ += std::to_string(v);
  return *this;
}

std::string JsonWriter::str() const {
  ANOW_CHECK_MSG(frames_.empty(), "unclosed JSON object");
  return out_;
}

void JsonWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  ANOW_CHECK_MSG(out.good(), "cannot open " << path);
  out << str() << "\n";
  ANOW_CHECK_MSG(out.good(), "write failed: " << path);
}

std::string format_mb(std::int64_t bytes, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals)
     << static_cast<double>(bytes) / (1024.0 * 1024.0);
  return os.str();
}

std::string format_thousands(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace anow::util
