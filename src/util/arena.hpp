// Bump allocator with wholesale release (DESIGN.md §10).
//
// The DSM hot paths allocate many small, same-lifetime payloads (the diff
// archive between two GCs is the canonical case): a per-op heap allocation
// each would dominate the op itself.  An Arena hands out pointers into
// geometrically growing chunks; reset() recycles every chunk at once, so a
// whole generation of payloads is freed in O(chunks) without touching the
// allocator per object.  Nothing is destroyed — only trivially destructible
// payloads (raw bytes) belong in an arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace anow::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns n bytes of storage, 8-byte aligned, valid until reset().
  /// n == 0 returns a pointer that must not be dereferenced (may be null).
  std::uint8_t* alloc(std::size_t n);

  /// Recycles every chunk: all outstanding pointers become invalid, the
  /// chunk storage is kept for reuse (steady-state reset allocates nothing).
  void reset();

  /// Drops every chunk back to the heap (reset + free).
  void release();

  /// Bytes handed out since the last reset (excludes alignment padding).
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total chunk storage held, allocated or not.
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  /// Makes chunks_[next_chunk_] able to hold n bytes, growing geometrically.
  void add_chunk(std::size_t n);

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t next_chunk_ = 0;  // chunks_[0..next_chunk_) are in use
  std::uint8_t* cur_ = nullptr;
  std::uint8_t* end_ = nullptr;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace anow::util
