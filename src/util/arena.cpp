#include "util/arena.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anow::util {

namespace {
constexpr std::size_t kAlign = 8;
}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  ANOW_CHECK(chunk_bytes_ > 0);
}

std::uint8_t* Arena::alloc(std::size_t n) {
  if (static_cast<std::size_t>(end_ - cur_) < n) [[unlikely]] {
    add_chunk(n);
  }
  std::uint8_t* out = cur_;
  cur_ += (n + (kAlign - 1)) & ~(kAlign - 1);
  if (cur_ > end_) cur_ = end_;  // padding may overshoot the chunk tail
  bytes_allocated_ += n;
  return out;
}

void Arena::add_chunk(std::size_t n) {
  if (next_chunk_ < chunks_.size() && chunks_[next_chunk_].size >= n) {
    // reset() left a chunk big enough; reuse it.
  } else {
    // Geometric growth keeps the chunk count logarithmic in the total
    // footprint: each new chunk doubles the largest so far (floored at the
    // configured chunk size, raised to n for oversized one-off payloads).
    std::size_t want = chunk_bytes_;
    for (const Chunk& c : chunks_) want = std::max(want, c.size * 2);
    want = std::max(want, n);
    Chunk c;
    c.data = std::make_unique<std::uint8_t[]>(want);
    c.size = want;
    bytes_reserved_ += want;
    chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(next_chunk_),
                   std::move(c));
  }
  Chunk& chunk = chunks_[next_chunk_];
  ++next_chunk_;
  cur_ = chunk.data.get();
  end_ = cur_ + chunk.size;
}

void Arena::reset() {
  next_chunk_ = 0;
  cur_ = nullptr;
  end_ = nullptr;
  bytes_allocated_ = 0;
}

void Arena::release() {
  chunks_.clear();
  chunks_.shrink_to_fit();
  next_chunk_ = 0;
  cur_ = nullptr;
  end_ = nullptr;
  bytes_allocated_ = 0;
  bytes_reserved_ = 0;
}

}  // namespace anow::util
