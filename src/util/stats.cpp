#include "util/stats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace anow::util {

std::int64_t StatsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

double StatsRegistry::accum_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = accums_.find(name);
  return it == accums_.end() ? 0.0 : it->second;
}

void StatsRegistry::clear() {
  // Zero in place rather than erase: hot paths hold handle() pointers into
  // the map nodes, and those must survive a mid-run reset.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, value] : counters_) value = 0;
  for (auto& [name, value] : accums_) value = 0.0;
}

StatsRegistry::Snapshot StatsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, value] : counters_) {
    s.counters[name] = value.load(std::memory_order_relaxed);
  }
  s.accums = accums_;
  return s;
}

StatsRegistry::Snapshot StatsRegistry::Snapshot::delta_since(
    const Snapshot& earlier) const {
  Snapshot d;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    d.counters[name] = value - (it == earlier.counters.end() ? 0 : it->second);
  }
  for (const auto& [name, value] : accums) {
    auto it = earlier.accums.find(name);
    d.accums[name] = value - (it == earlier.accums.end() ? 0.0 : it->second);
  }
  return d;
}

std::int64_t StatsRegistry::Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double StatsRegistry::Snapshot::accum(const std::string& name) const {
  auto it = accums.find(name);
  return it == accums.end() ? 0.0 : it->second;
}

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double Summary::mean() const {
  ANOW_CHECK(n_ > 0);
  return sum_ / static_cast<double>(n_);
}

double Summary::min() const {
  ANOW_CHECK(n_ > 0);
  return min_;
}

double Summary::max() const {
  ANOW_CHECK(n_ > 0);
  return max_;
}

double Summary::stddev() const {
  ANOW_CHECK(n_ > 0);
  const double m = mean();
  const double var = sum_sq_ / static_cast<double>(n_) - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

}  // namespace anow::util
