#include "util/check.hpp"

#include <sstream>

namespace anow::util {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "ANOW_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace anow::util
