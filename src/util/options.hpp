// Tiny command-line option parser for benches and examples.
//
// Supports --key=value, --key value, and boolean --flag forms.  Unknown
// options are an error so typos in sweeps don't silently run defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace anow::util {

class Options {
 public:
  /// Parses argv; throws CheckError on malformed input.
  Options(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& default_value) const;
  /// get_string restricted to an allowed set (e.g. --engine {lrc,home});
  /// throws with the valid choices listed when the value is not one of them.
  std::string get_choice(const std::string& key,
                         const std::vector<std::string>& allowed,
                         const std::string& default_value) const;
  std::int64_t get_int(const std::string& key,
                       std::int64_t default_value) const;
  double get_double(const std::string& key, double default_value) const;
  bool get_bool(const std::string& key, bool default_value) const;

  /// Keys seen on the command line (for validation by the caller).
  const std::map<std::string, std::string>& raw() const { return values_; }

  /// Checks that every provided key is in the allowed set; throws otherwise.
  void allow_only(const std::vector<std::string>& keys) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace anow::util
