#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace anow::util {

double Rng::next_exponential(double mean) {
  ANOW_CHECK(mean > 0.0);
  // Inverse CDF; 1 - u avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

}  // namespace anow::util
