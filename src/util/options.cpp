#include "util/options.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anow::util {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    ANOW_CHECK_MSG(arg.rfind("--", 0) == 0,
                   "expected --option, got '" << arg << "'");
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag
    }
  }
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Options::get_string(const std::string& key,
                                const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

std::string Options::get_choice(const std::string& key,
                                const std::vector<std::string>& allowed,
                                const std::string& default_value) const {
  const std::string value = get_string(key, default_value);
  if (std::find(allowed.begin(), allowed.end(), value) != allowed.end()) {
    return value;
  }
  std::string choices;
  for (const auto& a : allowed) {
    if (!choices.empty()) choices += ",";
    choices += a;
  }
  ANOW_CHECK_MSG(false, "option --" << key << " expects one of {" << choices
                                    << "}, got '" << value << "'");
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    ANOW_CHECK_MSG(false, "option --" << key << " expects an integer, got '"
                                      << it->second << "'");
  }
}

double Options::get_double(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    ANOW_CHECK_MSG(false, "option --" << key << " expects a number, got '"
                                      << it->second << "'");
  }
}

bool Options::get_bool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  ANOW_CHECK_MSG(false, "option --" << key << " expects a boolean, got '" << v
                                    << "'");
}

void Options::allow_only(const std::vector<std::string>& keys) const {
  for (const auto& [key, value] : values_) {
    (void)value;
    ANOW_CHECK_MSG(std::find(keys.begin(), keys.end(), key) != keys.end(),
                   "unknown option --" << key);
  }
}

}  // namespace anow::util
