// ASCII table formatting for bench output.
//
// Every bench binary reproduces one of the paper's tables/figures as rows;
// this class keeps the formatting consistent (right-aligned numbers,
// left-aligned labels, column auto-width).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace anow::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row.  Cells are appended with add().
  Table& row();
  Table& add(const std::string& cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& add(std::int64_t value);
  Table& add(int value) { return add(static_cast<std::int64_t>(value)); }
  Table& add(std::size_t value) {
    return add(static_cast<std::int64_t>(value));
  }
  /// Fixed-point double with the given number of decimals.
  Table& add(double value, int decimals = 2);

  /// Inserts a horizontal separator line before the next row.
  Table& separator();

  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Minimal JSON emitter for machine-readable bench artifacts
/// (BENCH_*.json) and Chrome trace-event files: nested objects, arrays, and
/// scalar fields, emitted in insertion order.  Not a general serializer.
class JsonWriter {
 public:
  JsonWriter();

  /// Opens a nested object; at the top level `key` must be empty exactly
  /// once (the root), elsewhere it names the member.  Inside an array the
  /// key must be empty (anonymous element).
  JsonWriter& begin_object(const std::string& key = "");
  JsonWriter& end_object();

  /// Opens a nested array; same key rules as begin_object.
  JsonWriter& begin_array(const std::string& key = "");
  JsonWriter& end_array();

  JsonWriter& field(const std::string& key, const std::string& value);
  JsonWriter& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonWriter& field(const std::string& key, double value);
  JsonWriter& field(const std::string& key, std::int64_t value);
  JsonWriter& field(const std::string& key, int value) {
    return field(key, static_cast<std::int64_t>(value));
  }

  /// Scalar array elements; only legal inside an open array.
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// The serialized document; all objects/arrays must be closed.
  std::string str() const;
  void write_file(const std::string& path) const;

 private:
  void comma();
  void open_key(const std::string& key);
  void open_container(const std::string& key, char open, bool array);
  std::string number(double value) const;

  struct Frame {
    bool array = false;
    bool has_members = false;
  };

  std::string out_;
  std::vector<Frame> frames_;  // per open object/array
};

/// Formats a byte count as "123.45" megabytes (the unit Table 1 uses).
std::string format_mb(std::int64_t bytes, int decimals = 2);

/// Formats a count with thousands separators, e.g. 236,453 (Table 1 style).
std::string format_thousands(std::int64_t value);

}  // namespace anow::util
