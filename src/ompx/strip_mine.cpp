#include "ompx/strip_mine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace anow::ompx {

std::int64_t strip_count(double construct_seconds, double target_spacing_s,
                         std::int64_t iterations) {
  ANOW_CHECK(construct_seconds >= 0.0);
  ANOW_CHECK(target_spacing_s > 0.0);
  ANOW_CHECK(iterations >= 0);
  if (construct_seconds <= target_spacing_s || iterations <= 1) return 1;
  const auto strips = static_cast<std::int64_t>(
      std::ceil(construct_seconds / target_spacing_s));
  return std::min(strips, std::max<std::int64_t>(1, iterations));
}

IterRange strip_range(std::int64_t lo, std::int64_t hi, std::int64_t s,
                      std::int64_t strips) {
  ANOW_CHECK(strips >= 1);
  ANOW_CHECK(s >= 0 && s < strips);
  return static_block(lo, hi, static_cast<int>(s),
                      static_cast<int>(strips));
}

}  // namespace anow::ompx
