// ompx — the fork-join runtime layer the omp2tmk translator targets.
//
// A Region is an outlined parallel-construct body with a trivially-copyable
// argument struct; Runtime::parallel() performs Tmk_fork + local execution +
// Tmk_join through the DSM system.  SharedArray<T> wraps range-touching so
// application loops read like ordinary array code.
#pragma once

#include <cstring>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "dsm/process.hpp"
#include "dsm/system.hpp"
#include "ompx/partition.hpp"
#include "util/check.hpp"

namespace anow::ompx {

/// Serializes a trivially-copyable argument struct for a fork message.
template <typename T>
std::vector<std::uint8_t> pack_args(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>,
                "fork args must be trivially copyable (they cross process "
                "boundaries on a real NOW)");
  std::vector<std::uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
T unpack_args(const std::vector<std::uint8_t>& bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  ANOW_CHECK_MSG(bytes.size() == sizeof(T), "fork args size mismatch");
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

/// Typed handle for a registered parallel region.
template <typename Args>
struct Region {
  std::int32_t task_id = -1;
};

class Runtime {
 public:
  explicit Runtime(dsm::DsmSystem& system) : system_(system) {}

  dsm::DsmSystem& system() { return system_; }

  /// Registers an outlined parallel-construct body.  Must run before
  /// start(), identically on every process (single binary).
  template <typename Args>
  Region<Args> region(std::string name,
                      std::function<void(dsm::DsmProcess&, const Args&)> body) {
    const std::int32_t id = system_.register_task(
        std::move(name),
        [body = std::move(body)](dsm::DsmProcess& p,
                                 const std::vector<std::uint8_t>& raw) {
          body(p, unpack_args<Args>(raw));
        });
    return Region<Args>{id};
  }

  /// The parallel construct: fork the team, run the body everywhere
  /// (master included), join.  Master fiber only.
  template <typename Args>
  void parallel(Region<Args> region, const Args& args) {
    system_.run_parallel(region.task_id, pack_args(args));
  }

 private:
  dsm::DsmSystem& system_;
};

/// A typed view of a shared-memory array: read()/write() touch the range
/// through the DSM fault machinery and hand back a raw pointer into the
/// process's local copy.
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(dsm::GAddr addr, std::int64_t count)
      : addr_(addr), count_(count) {}

  /// Allocates from the shared heap (master, before start or between
  /// constructs).
  static SharedArray allocate(dsm::DsmSystem& system, std::int64_t count) {
    return SharedArray(
        system.shared_malloc(static_cast<std::size_t>(count) * sizeof(T)),
        count);
  }

  dsm::GAddr gaddr() const { return addr_; }
  std::int64_t size() const { return count_; }

  /// Elements per DSM page (for page-aligned partitioning).
  static constexpr std::int64_t elems_per_page() {
    return static_cast<std::int64_t>(dsm::kPageSize / sizeof(T));
  }

  const T* read(dsm::DsmProcess& p, std::int64_t lo, std::int64_t hi) const {
    check_range(lo, hi);
    p.read_range(addr_ + static_cast<dsm::GAddr>(lo) * sizeof(T),
                 static_cast<std::size_t>(hi - lo) * sizeof(T));
    return p.cptr<T>(addr_);
  }

  T* write(dsm::DsmProcess& p, std::int64_t lo, std::int64_t hi) const {
    check_range(lo, hi);
    p.write_range(addr_ + static_cast<dsm::GAddr>(lo) * sizeof(T),
                  static_cast<std::size_t>(hi - lo) * sizeof(T));
    return p.ptr<T>(addr_);
  }

  const T* read_all(dsm::DsmProcess& p) const { return read(p, 0, count_); }
  T* write_all(dsm::DsmProcess& p) const { return write(p, 0, count_); }

 private:
  void check_range(std::int64_t lo, std::int64_t hi) const {
    ANOW_CHECK_MSG(0 <= lo && lo <= hi && hi <= count_,
                   "SharedArray range [" << lo << "," << hi << ") out of [0,"
                                         << count_ << ")");
  }

  dsm::GAddr addr_ = 0;
  std::int64_t count_ = 0;
};

/// Reduction support in the style TreadMarks programs use: one page-aligned
/// slot per process; each contributor writes its own slot inside the
/// construct, the master combines after the join.  Slots are page-sized so
/// single-writer arrays stay legal.
template <typename T>
class ReductionSlots {
 public:
  static constexpr int kMaxProcs = 64;

  static ReductionSlots allocate(dsm::DsmSystem& system) {
    ReductionSlots r;
    r.addr_ = system.shared_malloc_aligned(kMaxProcs * dsm::kPageSize,
                                           dsm::kPageSize);
    return r;
  }

  /// Called inside the construct by each process.
  void contribute(dsm::DsmProcess& p, const T& value) const {
    ANOW_CHECK(p.pid() < kMaxProcs);
    const dsm::GAddr slot =
        addr_ + static_cast<dsm::GAddr>(p.pid()) * dsm::kPageSize;
    p.write_range(slot, sizeof(T));
    *p.ptr<T>(slot) = value;
  }

  /// Called by the master after the join; combines the first `nprocs` slots
  /// in pid order (deterministic floating-point).
  template <typename Combine>
  T combine(dsm::DsmProcess& master, int nprocs, T init,
            Combine&& op) const {
    T acc = init;
    for (int pid = 0; pid < nprocs; ++pid) {
      const dsm::GAddr slot =
          addr_ + static_cast<dsm::GAddr>(pid) * dsm::kPageSize;
      master.read_range(slot, sizeof(T));
      acc = op(acc, *master.cptr<T>(slot));
    }
    return acc;
  }

 private:
  dsm::GAddr addr_ = 0;
};

}  // namespace anow::ompx
