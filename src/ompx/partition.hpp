// Iteration partitioning — the code the OpenMP compiler generates at the
// top of every outlined parallel loop body (§2: "additional code generated
// inside this procedure lets each process figure out, based on its
// TreadMarks process identifier and the total number of processes, which
// iterations of the loop it should execute").
//
// Because partitioning is evaluated from (pid, nprocs) on every entry, a
// team-size change at an adaptation point transparently re-partitions the
// loop — the paper's whole trick.
#pragma once

#include <cstdint>

#include "dsm/types.hpp"

namespace anow::ompx {

struct IterRange {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive
  std::int64_t count() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

/// OpenMP schedule(static): contiguous blocks, remainder spread over the
/// first `n % nprocs` processes.
IterRange static_block(std::int64_t lo, std::int64_t hi, int pid, int nprocs);

/// Block partition of [0, n) rounded outward to `align`-element boundaries,
/// so that per-process slices of an array with `align` elements per page
/// never share a page (keeps single-writer arrays legal for any nprocs).
IterRange aligned_block(std::int64_t n, std::int64_t align, int pid,
                        int nprocs);

/// Cyclic (round-robin) ownership test: does `index` belong to `pid`?
inline bool cyclic_owner(std::int64_t index, int pid, int nprocs) {
  return index % nprocs == pid;
}

}  // namespace anow::ompx
