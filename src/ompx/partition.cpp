#include "ompx/partition.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anow::ompx {

IterRange static_block(std::int64_t lo, std::int64_t hi, int pid,
                       int nprocs) {
  ANOW_CHECK(nprocs >= 1);
  ANOW_CHECK(pid >= 0 && pid < nprocs);
  const std::int64_t n = std::max<std::int64_t>(0, hi - lo);
  const std::int64_t base = n / nprocs;
  const std::int64_t rem = n % nprocs;
  const std::int64_t start =
      lo + pid * base + std::min<std::int64_t>(pid, rem);
  const std::int64_t len = base + (pid < rem ? 1 : 0);
  return {start, start + len};
}

IterRange aligned_block(std::int64_t n, std::int64_t align, int pid,
                        int nprocs) {
  ANOW_CHECK(nprocs >= 1);
  ANOW_CHECK(pid >= 0 && pid < nprocs);
  ANOW_CHECK(align >= 1);
  // Partition the chunk index space, then scale back up.
  const std::int64_t chunks = (n + align - 1) / align;
  IterRange c = static_block(0, chunks, pid, nprocs);
  IterRange out{c.lo * align, c.hi * align};
  out.hi = std::min(out.hi, n);
  out.lo = std::min(out.lo, n);
  return out;
}

}  // namespace anow::ompx
