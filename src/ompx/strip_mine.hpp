// Compiler-controlled adaptation-point frequency (paper §7, future work):
// "the compiler can control the frequency of adaptation points by
// transformations similar to loop tiling or strip mining ... the compiler
// can generate code that determines at runtime the trip counts or tiling of
// the loops, subject to the characteristics of the execution environment."
//
// strip_count() is that runtime decision: given the estimated duration of
// one parallel construct and a target adaptation-point spacing (e.g. the
// grace period the NOW's owners grant), it returns how many strips to split
// the iteration space into.  Runtime::parallel_strips() then executes one
// construct per strip — each strip boundary is an adaptation point.
#pragma once

#include <cstdint>

#include "ompx/partition.hpp"

namespace anow::ompx {

/// Number of strips so that one strip takes at most target_spacing_s.
/// Always >= 1; never more than the iteration count.
std::int64_t strip_count(double construct_seconds, double target_spacing_s,
                         std::int64_t iterations);

/// The iteration sub-range of strip `s` out of `strips` over [lo, hi).
IterRange strip_range(std::int64_t lo, std::int64_t hi, std::int64_t s,
                      std::int64_t strips);

}  // namespace anow::ompx
