#include "analysis/race_detector.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "util/check.hpp"

namespace anow::analysis {

namespace {

/// Component read that tolerates ragged clocks (uids join over time).
std::int64_t comp(const std::vector<std::int64_t>& v, dsm::Uid q) {
  const auto i = static_cast<std::size_t>(q);
  return i < v.size() ? v[i] : 0;
}

void max_into(std::vector<std::int64_t>& dst,
              const std::vector<std::int64_t>& src) {
  if (dst.size() < src.size()) dst.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::max(dst[i], src[i]);
  }
}

int first_word(const std::array<std::uint64_t, dsm::kWordsPerPage / 64>& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m[i] != 0) {
      return static_cast<int>(i * 64) + std::countr_zero(m[i]);
    }
  }
  return -1;
}

int last_word(const std::array<std::uint64_t, dsm::kWordsPerPage / 64>& m) {
  for (std::size_t i = m.size(); i-- > 0;) {
    if (m[i] != 0) {
      return static_cast<int>(i * 64) + 63 - std::countl_zero(m[i]);
    }
  }
  return -1;
}

}  // namespace

void RaceDetector::grow_to(dsm::Uid uid) {
  const auto n = static_cast<std::size_t>(uid) + 1;
  if (vc_.size() < n) {
    vc_.resize(n);
    live_.resize(n, false);
    open_.resize(n);
  }
  if (!live_[static_cast<std::size_t>(uid)]) {
    live_[static_cast<std::size_t>(uid)] = true;
    auto& vc = vc_[static_cast<std::size_t>(uid)];
    if (vc.size() < n) vc.resize(n, 0);
    // A fresh process starts in epoch 1 (0 means "never synchronized with").
    if (vc[static_cast<std::size_t>(uid)] == 0) {
      vc[static_cast<std::size_t>(uid)] = 1;
    }
  }
}

void RaceDetector::record(dsm::Uid uid, dsm::GAddr addr, std::size_t len,
                          bool is_write) {
  if (len == 0) return;
  grow_to(uid);
  auto& open = open_[static_cast<std::size_t>(uid)];
  const dsm::PageId end = dsm::page_end(addr, len);
  for (dsm::PageId p = dsm::page_of(addr); p < end; ++p) {
    PageAccess& acc = open[p];
    WordMask& mask = is_write ? acc.write : acc.read;
    std::size_t w0 = 0, w1 = dsm::kWordsPerPage - 1;
    if (granularity_ == RaceGranularity::kWord) {
      const dsm::GAddr base = dsm::page_base(p);
      const dsm::GAddr lo = std::max<dsm::GAddr>(addr, base);
      const dsm::GAddr hi =
          std::min<dsm::GAddr>(addr + len, base + dsm::kPageSize);
      w0 = static_cast<std::size_t>(lo - base) / dsm::kWordSize;
      w1 = static_cast<std::size_t>(hi - 1 - base) / dsm::kWordSize;
    }
    for (std::size_t w = w0; w <= w1; ++w) {
      mask[w / 64] |= std::uint64_t{1} << (w % 64);
    }
  }
}

void RaceDetector::close_segment(dsm::Uid uid) {
  grow_to(uid);
  auto& open = open_[static_cast<std::size_t>(uid)];
  if (open.empty()) return;
  ++segments_closed_;
  check_against_retained(uid, open);
  Segment seg;
  seg.uid = uid;
  seg.epoch = comp(vc_[static_cast<std::size_t>(uid)], uid);
  seg.pages = std::move(open);
  open.clear();
  retained_.push_back(std::move(seg));
}

void RaceDetector::check_against_retained(
    dsm::Uid uid, std::unordered_map<dsm::PageId, PageAccess>& open) {
  const VectorClock& my_vc = vc_[static_cast<std::size_t>(uid)];
  const std::int64_t my_epoch = comp(my_vc, uid);
  for (const Segment& seg : retained_) {
    if (seg.uid == uid) continue;
    // Ordered after the stored segment?  Then no race by happens-before.
    if (comp(my_vc, seg.uid) >= seg.epoch) continue;
    ++pair_checks_;
    for (const auto& [page, mine] : open) {
      auto it = seg.pages.find(page);
      if (it == seg.pages.end()) continue;
      const PageAccess& theirs = it->second;
      WordMask ww{}, wr{}, rw{};
      bool any_ww = false, any_wr = false, any_rw = false;
      for (std::size_t i = 0; i < ww.size(); ++i) {
        ww[i] = theirs.write[i] & mine.write[i];
        wr[i] = theirs.write[i] & mine.read[i] & ~ww[i];
        rw[i] = theirs.read[i] & mine.write[i] & ~ww[i];
        any_ww |= ww[i] != 0;
        any_wr |= wr[i] != 0;
        any_rw |= rw[i] != 0;
      }
      if (any_ww) report(seg, uid, my_epoch, page, ww, "ww");
      if (any_wr) report(seg, uid, my_epoch, page, wr, "wr");
      if (any_rw) report(seg, uid, my_epoch, page, rw, "rw");
    }
  }
}

void RaceDetector::report(const Segment& old_seg, dsm::Uid uid,
                          std::int64_t epoch, dsm::PageId page,
                          const WordMask& overlap, const char* kind) {
  // One report per (page, pair, kind): the sweep loops re-touch the same
  // conflicting words every iteration and would otherwise drown the signal.
  if (!seen_keys_.insert({page, old_seg.uid, uid, kind}).second) return;
  ++race_count_;
  if (reports_.size() >= kMaxStoredReports) return;
  RaceReport r;
  r.page = page;
  r.word_first = first_word(overlap);
  r.word_last = last_word(overlap);
  r.uid_a = old_seg.uid;
  r.uid_b = uid;
  r.epoch_a = old_seg.epoch;
  r.epoch_b = epoch;
  r.kind = kind;
  reports_.push_back(r);
}

void RaceDetector::release_point(dsm::Uid uid) {
  close_segment(uid);
  auto& vc = vc_[static_cast<std::size_t>(uid)];
  if (vc.size() <= static_cast<std::size_t>(uid)) {
    vc.resize(static_cast<std::size_t>(uid) + 1, 0);
  }
  ++vc[static_cast<std::size_t>(uid)];
}

void RaceDetector::join(dsm::Uid uid, const VectorClock& src) {
  max_into(vc_[static_cast<std::size_t>(uid)], src);
}

void RaceDetector::on_barrier_arrive(dsm::Uid uid) {
  grow_to(uid);
  close_segment(uid);
  max_into(barrier_accum_, vc_[static_cast<std::size_t>(uid)]);
  release_point(uid);
}

void RaceDetector::on_barrier_sealed() {
  // All arrivals of this epoch happened (in simulated time) before this
  // point, and every arrival of the *next* epoch is causally after one of
  // this epoch's releases — so a single sealed clock is never joined late.
  barrier_sealed_ = std::move(barrier_accum_);
  barrier_accum_.clear();
  prune_retained();
}

void RaceDetector::on_barrier_release(dsm::Uid uid) {
  grow_to(uid);
  close_segment(uid);
  join(uid, barrier_sealed_);
}

void RaceDetector::on_lock_release(dsm::Uid uid, std::int64_t lock_id) {
  grow_to(uid);
  close_segment(uid);
  max_into(lock_vc_[lock_id], vc_[static_cast<std::size_t>(uid)]);
  release_point(uid);
}

void RaceDetector::on_lock_acquire(dsm::Uid uid, std::int64_t lock_id) {
  grow_to(uid);
  close_segment(uid);
  auto it = lock_vc_.find(lock_id);
  if (it != lock_vc_.end()) join(uid, it->second);
}

void RaceDetector::on_fork_publish(dsm::Uid master) {
  grow_to(master);
  close_segment(master);
  fork_vc_ = vc_[static_cast<std::size_t>(master)];
  release_point(master);
}

void RaceDetector::on_fork_join(dsm::Uid uid) {
  grow_to(uid);
  close_segment(uid);
  join(uid, fork_vc_);
}

void RaceDetector::on_expel(dsm::Uid uid) {
  if (static_cast<std::size_t>(uid) < live_.size()) {
    close_segment(uid);
    live_[static_cast<std::size_t>(uid)] = false;
  }
}

void RaceDetector::prune_retained() {
  auto covered = [this](const Segment& seg) {
    for (std::size_t p = 0; p < vc_.size(); ++p) {
      if (!live_[p]) continue;
      if (comp(vc_[p], seg.uid) < seg.epoch) return false;
    }
    return true;
  };
  std::erase_if(retained_, covered);
}

void RaceDetector::finalize(util::StatsRegistry& stats) {
  if (finalized_) return;
  finalized_ = true;
  for (std::size_t uid = 0; uid < open_.size(); ++uid) {
    close_segment(static_cast<dsm::Uid>(uid));
  }
  stats.counter("obs.race.reports") = race_count_;
  stats.counter("obs.race.segments") = segments_closed_;
  stats.counter("obs.race.checks") = pair_checks_;
}

std::string RaceDetector::races_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    const RaceReport& r = reports_[i];
    if (i != 0) os << ",";
    os << "{\"page\":" << r.page << ",\"word_first\":" << r.word_first
       << ",\"word_last\":" << r.word_last << ",\"uids\":[" << r.uid_a << ","
       << r.uid_b << "],\"epochs\":[" << r.epoch_a << "," << r.epoch_b
       << "],\"kind\":\"" << r.kind << "\"}";
  }
  os << "]";
  return os.str();
}

}  // namespace anow::analysis
