#include "analysis/protocol_checker.hpp"

#include "util/check.hpp"

namespace anow::analysis {

void ProtocolChecker::on_envelope_send(dsm::Uid src, dsm::Uid dst,
                                       const dsm::Envelope& env) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto& pair_seq = next_seq_[{src, dst}];
  Fingerprint fp;
  fp.seq = pair_seq++;
  fp.first_kind = env.segments.empty()
                      ? -1
                      : static_cast<int>(dsm::segment_kind(env.segments[0]));
  fp.segments = env.segments.size();
  in_flight_[{src, dst}].push_back(fp);
}

void ProtocolChecker::on_envelope_deliver(dsm::Uid src, dsm::Uid dst,
                                          const dsm::Envelope& env) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto it = in_flight_.find({src, dst});
  ANOW_CHECK_MSG(it != in_flight_.end() && !it->second.empty(),
                 "envelope delivered " << src << "->" << dst
                                       << " that was never sent");
  const Fingerprint fp = it->second.front();
  it->second.pop_front();
  const int first_kind =
      env.segments.empty()
          ? -1
          : static_cast<int>(dsm::segment_kind(env.segments[0]));
  ANOW_CHECK_MSG(fp.segments == env.segments.size() &&
                     fp.first_kind == first_kind,
                 "per-pair FIFO violated "
                     << src << "->" << dst << ": expected envelope #" << fp.seq
                     << " (" << fp.segments << " segments, first kind "
                     << fp.first_kind << "), got " << env.segments.size()
                     << " segments, first kind " << first_kind);
}

void ProtocolChecker::on_home_flush_planned(dsm::Uid writer) {
  const std::lock_guard<std::mutex> lk(mu_);
  ++outstanding_flushes_[writer];
}

void ProtocolChecker::on_home_flush_applied(dsm::Uid writer) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto& outstanding = outstanding_flushes_[writer];
  ANOW_CHECK_MSG(outstanding > 0, "home flush of writer "
                                      << writer
                                      << " applied but never planned");
  --outstanding;
}

void ProtocolChecker::on_release_announced(dsm::Uid writer) {
  const std::lock_guard<std::mutex> lk(mu_);
  auto it = outstanding_flushes_.find(writer);
  const std::int64_t outstanding = it == outstanding_flushes_.end()
                                       ? 0
                                       : it->second;
  ANOW_CHECK_MSG(outstanding == 0,
                 "ack-before-announce violated: writer "
                     << writer << " announced a release with " << outstanding
                     << " home flush(es) not yet applied");
}

void ProtocolChecker::on_interval_logged(const dsm::Interval& interval) {
  const std::lock_guard<std::mutex> lk(mu_);
  if (interval.iseq == 0) return;  // empty interval, never logged
  auto& last = last_iseq_[interval.creator];
  ANOW_CHECK_MSG(interval.iseq > last,
                 "interval log not monotonic for creator "
                     << interval.creator << ": iseq " << interval.iseq
                     << " after " << last);
  last = interval.iseq;
}

void ProtocolChecker::on_epoch_logged(
    const std::vector<dsm::Interval>& intervals,
    const std::vector<dsm::Protocol>& protocol) {
  // page -> creator of the first write notice seen this epoch.
  std::map<dsm::PageId, dsm::Uid> writer_of;
  for (const dsm::Interval& iv : intervals) {
    if (iv.iseq == 0) continue;
    for (const dsm::WriteNotice& wn : iv.notices) {
      const auto p = static_cast<std::size_t>(wn.page);
      if (p >= protocol.size() ||
          protocol[p] != dsm::Protocol::kSingleWriter) {
        continue;
      }
      auto [it, fresh] = writer_of.emplace(wn.page, iv.creator);
      ANOW_CHECK_MSG(fresh || it->second == iv.creator,
                     "single-writer page " << wn.page
                                           << " written by creators "
                                           << it->second << " and "
                                           << iv.creator << " in one epoch");
    }
  }
}

void ProtocolChecker::note_arena_reset(std::int64_t outstanding_views) const {
  ANOW_CHECK_MSG(outstanding_views == 0,
                 "diff arena reset with " << outstanding_views
                                          << " archived DiffView(s) still "
                                             "pointing into it");
}

void ProtocolChecker::on_expel(dsm::Uid leaver,
                               std::int64_t staged_segments) const {
  ANOW_CHECK_MSG(staged_segments == 0,
                 "expel of uid " << leaver << " would drop "
                                 << staged_segments
                                 << " staged segment(s) on the floor");
}

}  // namespace anow::analysis
