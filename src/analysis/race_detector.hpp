// LRC data-race detector (DESIGN.md §13).
//
// Lazy release consistency only promises sequentially consistent results to
// data-race-free programs, so a racy application surfaces as a wrong
// checksum with no diagnosis.  This detector certifies (or refutes) DRF-ness
// by riding the synchronization structure the protocol already exposes: it
// keeps one vector clock per process, draws happens-before edges exactly
// where the protocol draws them — fork publishes, barrier arrivals/releases,
// lock release→grant chains — and summarizes every process's shared accesses
// between two synchronization points into per-page word bitmasks captured at
// the read_range/write_range front door (the same declarations the fault
// machinery itself trusts).  When a summary closes it is checked against
// every retained summary that is concurrent with it (neither vector clock
// dominates); overlapping words with at least one writer are a race, DJIT+
// style.
//
// The detector is a *pure observer*: it is only constructed when
// DsmConfig::race_check != kOff, processes cache a raw pointer exactly like
// the TraceRecorder, and no hook ever sends a message, charges virtual time,
// or touches page data — so an enabled run is byte-identical on the wire to
// a disabled one (the zero-perturbation gate of DESIGN.md §11 applies
// verbatim, and bench_protocols pins it).
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "dsm/types.hpp"
#include "util/stats.hpp"

namespace anow::analysis {

/// Detection granularity: page sets the whole mask, word sets one bit per
/// 8-byte word (dsm::kWordSize — the protocol's own diff granularity).
enum class RaceGranularity : std::uint8_t { kPage, kWord };

/// One confirmed race: two concurrent segments touched overlapping words of
/// one page and at least one side wrote.
struct RaceReport {
  dsm::PageId page = 0;
  /// Conflicting word range within the page, inclusive (word = 8 bytes).
  int word_first = 0;
  int word_last = 0;
  /// The two racing processes and the per-process interval epochs (the
  /// vector-clock components — 1-based release counts) their accesses
  /// belong to.
  dsm::Uid uid_a = dsm::kNoUid;
  dsm::Uid uid_b = dsm::kNoUid;
  std::int64_t epoch_a = 0;
  std::int64_t epoch_b = 0;
  /// "ww", "rw", or "wr" (a's role first).
  const char* kind = "ww";
};

class RaceDetector {
 public:
  explicit RaceDetector(RaceGranularity granularity)
      : granularity_(granularity) {}

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // --- access capture (process fiber context) ----------------------------
  void record_read(dsm::Uid uid, dsm::GAddr addr, std::size_t len) {
    record(uid, addr, len, /*is_write=*/false);
  }
  void record_write(dsm::Uid uid, dsm::GAddr addr, std::size_t len) {
    record(uid, addr, len, /*is_write=*/true);
  }

  // --- happens-before edges (one hook per protocol sync point) -----------
  /// Process announces a barrier arrival: closes its open segment, adds its
  /// clock to the in-flight barrier accumulator, and counts a release.
  void on_barrier_arrive(dsm::Uid uid);
  /// Master saw the last arrival of the epoch (DsmSystem::barrier_complete):
  /// seals the accumulator as the epoch's release clock.  Every arrival of
  /// the next epoch is causally after this point, so one sealed clock at a
  /// time suffices.
  void on_barrier_sealed();
  /// Process returns from the barrier: joins the sealed epoch clock.
  void on_barrier_release(dsm::Uid uid);
  /// Lock release: close + publish this process's clock into the lock's
  /// accumulated clock + count a release.
  void on_lock_release(dsm::Uid uid, std::int64_t lock_id);
  /// Lock granted: close the open segment (its accesses precede the join),
  /// then join the lock's accumulated clock.
  void on_lock_acquire(dsm::Uid uid, std::int64_t lock_id);
  /// Master publishes a fork: close + snapshot the master clock as the
  /// construct's fork clock + count a release.
  void on_fork_publish(dsm::Uid master);
  /// Slave enters the construct body: joins the fork clock.
  void on_fork_join(dsm::Uid uid);
  /// A process left the team: its retained summaries can no longer gain
  /// happens-before edges, but they stay checkable; only pruning changes.
  void on_expel(dsm::Uid uid);

  // --- wrap-up ------------------------------------------------------------
  /// Closes every open segment (final checks fire) and publishes obs.race.*
  /// stats.  Stats only exist in the registry when a detector ran, keeping
  /// the "untraced runs carry zero obs.* counters" bench gate intact.
  void finalize(util::StatsRegistry& stats);

  const std::vector<RaceReport>& reports() const { return reports_; }
  /// Total races found (reports_ is capped; this never is).
  std::int64_t race_count() const { return race_count_; }

  /// The structured trace-JSON section: a JSON array of report objects
  /// (embedded as a "races" key next to traceEvents; DESIGN.md §13).
  std::string races_json() const;

 private:
  using WordMask = std::array<std::uint64_t, dsm::kWordsPerPage / 64>;

  struct PageAccess {
    WordMask read{};
    WordMask write{};
  };

  /// A closed access summary: every page the segment touched, tagged with
  /// the owning process and its clock component at close time.  Another
  /// process q is ordered after it iff vc_[q][uid] >= epoch.
  struct Segment {
    dsm::Uid uid = dsm::kNoUid;
    std::int64_t epoch = 0;
    std::unordered_map<dsm::PageId, PageAccess> pages;
  };

  using VectorClock = std::vector<std::int64_t>;

  void record(dsm::Uid uid, dsm::GAddr addr, std::size_t len, bool is_write);
  /// Checks the open summary against every retained concurrent segment,
  /// retains it, and starts a fresh one.  Called before any clock change.
  void close_segment(dsm::Uid uid);
  /// Close + publish own component (barrier arrive, lock release, fork).
  void release_point(dsm::Uid uid);
  void join(dsm::Uid uid, const VectorClock& vc);
  void grow_to(dsm::Uid uid);
  void check_against_retained(dsm::Uid uid,
                              std::unordered_map<dsm::PageId, PageAccess>& open);
  void report(const Segment& old_seg, dsm::Uid uid, std::int64_t epoch,
              dsm::PageId page, const WordMask& overlap, const char* kind);
  /// Drops retained segments every live process is already ordered after.
  void prune_retained();

  RaceGranularity granularity_;
  /// Per-uid vector clocks; vc_[p][p] is p's current epoch (1-based).
  std::vector<VectorClock> vc_;
  std::vector<bool> live_;
  std::vector<std::unordered_map<dsm::PageId, PageAccess>> open_;
  std::vector<Segment> retained_;

  VectorClock barrier_accum_;
  VectorClock barrier_sealed_;
  VectorClock fork_vc_;
  std::unordered_map<std::int64_t, VectorClock> lock_vc_;

  std::vector<RaceReport> reports_;
  /// Dedupe key: (page, uid_a, uid_b, kind).
  std::set<std::tuple<dsm::PageId, dsm::Uid, dsm::Uid, std::string>>
      seen_keys_;
  std::int64_t race_count_ = 0;
  std::int64_t segments_closed_ = 0;
  std::int64_t pair_checks_ = 0;
  bool finalized_ = false;

  static constexpr std::size_t kMaxStoredReports = 256;
};

}  // namespace anow::analysis
