// Protocol-invariant sanitizer (DESIGN.md §13).
//
// The transport and consistency layers rely on a handful of ordering
// invariants that are held only by convention: every departure path drains
// the Channel stage first (no-overtaking), a home flush is applied before
// the write notice it backs is announced, interval logs grow strictly
// monotonically per creator, and so on.  This observer turns each of those
// conventions into a machine-checked assertion, hooked from the exact
// points where the convention is relied upon.  Every violation fires an
// ANOW_CHECK (util::CheckError), so the checker aborts the run in any build
// configuration — including the Debug/sanitizer CI legs where it is
// compiled in via -DANOW_PROTOCOL_CHECKS=ON.
//
// The class itself is always compiled (the unit tests drive the hooks
// directly); the CMake option only controls whether DsmSystem installs an
// instance.  Like the race detector and the trace recorder, the checker is
// a pure observer: it never sends, charges time, or mutates protocol state,
// so an enabled run is byte-identical on the wire.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "dsm/interval.hpp"
#include "dsm/msg.hpp"
#include "dsm/types.hpp"

namespace anow::analysis {

class ProtocolChecker {
 public:
  ProtocolChecker() = default;
  ProtocolChecker(const ProtocolChecker&) = delete;
  ProtocolChecker& operator=(const ProtocolChecker&) = delete;

  // --- per-pair FIFO / no-overtaking -------------------------------------
  /// Transport accepted an envelope: remembers its shape per (src, dst).
  void on_envelope_send(dsm::Uid src, dsm::Uid dst, const dsm::Envelope& env);
  /// Envelope delivered: must match the oldest undelivered send of the
  /// pair — anything else means the network or a routing layer reordered.
  void on_envelope_deliver(dsm::Uid src, dsm::Uid dst,
                           const dsm::Envelope& env);

  // --- ack-before-announce for home flushes ------------------------------
  /// Writer planned one HomeFlush batch at a release point.
  void on_home_flush_planned(dsm::Uid writer);
  /// A home applied one HomeFlush batch of `writer`.
  void on_home_flush_applied(dsm::Uid writer);
  /// Master is about to log `writer`'s release interval: every flush the
  /// writer planned must already be applied (the data must be at its home
  /// before any notice pointing at it exists).
  void on_release_announced(dsm::Uid writer);

  // --- master-side interval log ------------------------------------------
  /// Per-creator iseq must grow strictly (dense 1-based, never reused).
  void on_interval_logged(const dsm::Interval& interval);
  /// One barrier epoch: a single-writer page may carry write notices from
  /// at most one creator (that is what "single writer" promises the
  /// directory's last-writer records).
  void on_epoch_logged(const std::vector<dsm::Interval>& intervals,
                       const std::vector<dsm::Protocol>& protocol);

  // --- arena lifetime ------------------------------------------------------
  /// The diff arena is about to be reset: no archived DiffView may still
  /// point into it (gc_commit_node must clear the archives first).
  void note_arena_reset(std::int64_t outstanding_views) const;

  // --- adaptation ----------------------------------------------------------
  /// A process is being expelled: nothing it staged may still be buffered
  /// (a staged segment would be silently dropped with the process).
  void on_expel(dsm::Uid leaver, std::int64_t staged_segments) const;

 private:
  /// Compact envelope shape: enough to catch reordering/duplication
  /// without retaining payloads.
  struct Fingerprint {
    std::uint64_t seq = 0;
    int first_kind = -1;
    std::size_t segments = 0;
  };

  /// Hooks fire from every process; under the real backend (DESIGN.md §14)
  /// that means concurrent pthreads, so all state lives behind one lock.
  /// Under the fibered simulator the lock is always uncontended.
  mutable std::mutex mu_;
  std::map<std::pair<dsm::Uid, dsm::Uid>, std::deque<Fingerprint>> in_flight_;
  std::map<std::pair<dsm::Uid, dsm::Uid>, std::uint64_t> next_seq_;
  std::map<dsm::Uid, std::int64_t> outstanding_flushes_;
  std::map<dsm::Uid, std::int32_t> last_iseq_;
};

}  // namespace anow::analysis
